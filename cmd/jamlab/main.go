// Command jamlab is the host-side control console of §2.5 — the "reactive
// jamming event builder" — reimagined as a scriptable CLI. It drives a
// simulated platform: configure detectors and jammer personalities exactly
// as the paper's GNU Radio Companion GUI does (every command maps to user
// register-bus writes), inject test traffic, and read back the host
// feedback counters.
//
// Commands (one per line on stdin, or as trailing arguments joined by ';'):
//
//	detect wifi-short <fa/s>      arm xcorr with the 802.11g STS template
//	detect wifi-long <fa/s>       arm xcorr with the 802.11g LTS template
//	detect wimax <cell> <segment> arm xcorr+energy fusion for 802.16e
//	detect energy <dB>            arm the energy differentiator alone
//	personality <wgn|replay|host> <uptime> <delay> <gain>
//	inject wifi <mbps> <bytes> <count>   modulate+stream 802.11g frames
//	inject wifib <bytes> <count>         modulate+stream 802.11b DSSS frames
//	inject wimax <count>                 stream WiMAX downlink frames
//	inject idle <ms>                     stream noise-floor samples
//	record <file>                 start recording jammer TX to an IQ capture
//	save                          finalize the recording
//	replay <file>                 stream a recorded capture into the detector
//	timelines                     print the Fig. 5 latency budget
//	stats                         poll host feedback counters
//	reset                         clear counters and datapath state
//	quit
//
// Flags:
//
//	-telemetry-addr host:port     serve Prometheus-style metrics at /metrics,
//	                              live SSE rollups at /stream, and
//	                              net/http/pprof at /debug/pprof/
//	-stream-interval duration     /stream push cadence (default 1s)
//	-trace-out file.json          dump the event journal as Chrome
//	                              trace_event JSON at exit
//	-flight-out file.json         arm the flight recorder; an anomaly alert
//	                              (or shutdown) dumps the incident here
//	-profile-dir dir              continuous CPU/heap profiling into dir
//	-fleet                        fleet telemetry plane: this console becomes
//	                              the "jamlab" cell of a fleet aggregator;
//	                              /metrics serves the cardinality-bounded
//	                              fleet exposition and /stream a multi-client
//	                              broadcast that drops stalled subscribers
//
// Any of these flags attaches the live telemetry recorder; injected frames
// are marked so reaction-latency histograms measure frame-start→RF-on. With
// the recorder attached, a streaming anomaly detector watches every
// processed block and journals alerts as first-class events. A one-line
// telemetry summary prints on shutdown.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/capture"
	"repro/internal/dsp"
	"repro/internal/telemetry"
	"repro/internal/telemetry/anomaly"
	"repro/internal/telemetry/fleet"
	"repro/internal/telemetry/flight"
	"repro/internal/telemetry/profile"
	"repro/internal/wifi"
	"repro/internal/wifib"
	"repro/internal/wimax"
)

type console struct {
	jam  *reactivejam.Framework
	rng  *rand.Rand
	out  io.Writer
	rate int // current source rate

	rec     *capture.Recorder
	recPath string

	// Observability plane (nil unless telemetry is enabled).
	flight  *flight.Recorder
	det     *anomaly.Detector
	dumped  bool
	sampler *profile.Sampler

	// Fleet plane (nil unless -fleet).
	agg   *fleet.Aggregator
	bcast *telemetry.Broadcaster
}

var (
	telemetryAddr = flag.String("telemetry-addr", "",
		"serve /metrics, /stream and /debug/pprof/ on this address (enables telemetry)")
	streamInterval = flag.Duration("stream-interval", time.Second,
		"push cadence of the /stream SSE rollups")
	traceOut = flag.String("trace-out", "",
		"write Chrome trace_event JSON here at exit (enables telemetry)")
	flightOut = flag.String("flight-out", "",
		"write the flight-recorder incident dump here (enables telemetry)")
	profileDir = flag.String("profile-dir", "",
		"capture periodic CPU/heap profiles into this directory (enables telemetry)")
	fleetFlag = flag.Bool("fleet", false,
		"serve the fleet telemetry plane on -telemetry-addr: /metrics becomes the "+
			"cardinality-bounded fleet exposition (this console is the 'jamlab' cell) "+
			"and /stream a multi-client broadcast that drops stalled subscribers (enables telemetry)")
)

func main() {
	flag.Parse()
	c := &console{
		jam:  reactivejam.New(),
		rng:  rand.New(rand.NewSource(1)),
		out:  os.Stdout,
		rate: 25_000_000,
	}
	if *telemetryAddr != "" || *traceOut != "" || *flightOut != "" || *profileDir != "" || *fleetFlag {
		live := c.jam.EnableTelemetry()
		// Flight recorder armed from the start; anomaly alerts (fed
		// synchronously per processed block) trigger incident dumps.
		c.flight = flight.New(live, flight.Options{})
		c.flight.Arm()
		c.det = anomaly.New(live, anomaly.Config{})
		c.det.OnAlert = func(a anomaly.Alert) {
			fmt.Fprintf(c.out, "anomaly: %s z=%.1f (value %.4g, baseline %.4g) at cycle %d\n",
				a.Name, a.Score, a.Value, a.Mean, a.Cycle)
			if *flightOut != "" && !c.dumped {
				d := c.flight.Trigger(flight.TriggerAnomaly, a.Cycle,
					fmt.Sprintf("anomaly on %s: z=%.1f", a.Name, a.Score))
				if err := writeDump(*flightOut, d); err != nil {
					fmt.Fprintf(c.out, "error: flight dump: %v\n", err)
					return
				}
				c.dumped = true
				fmt.Fprintf(c.out, "flight recorder: incident dump written to %s\n", *flightOut)
			}
		}
	}
	if *profileDir != "" {
		c.sampler = profile.NewSampler(profile.Config{Dir: *profileDir})
		if err := c.sampler.Start(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(c.out, "profiling: CPU/heap captures into %s\n", *profileDir)
	}
	if *fleetFlag {
		// This console is one cell of a fleet: its live recorder binds to
		// the "jamlab" cell so the aggregation plane pulls it on every
		// snapshot, and the /stream surface becomes the multi-client
		// broadcaster that drops (and counts) stalled subscribers.
		c.agg = fleet.New(fleet.Options{
			Budgets: fleet.DefaultBudgets(c.jam.GroupDelayCycles()),
			DroppedClients: func() uint64 {
				if c.bcast == nil {
					return 0
				}
				return c.bcast.DroppedClients()
			},
		})
		c.agg.Cell("jamlab").BindLive(c.jam.Telemetry())
		c.bcast = telemetry.NewBroadcaster(*streamInterval, c.agg.RollupSource())
	}
	if *telemetryAddr != "" {
		live := c.jam.Telemetry()
		mux := http.NewServeMux()
		if c.agg != nil {
			mux.Handle("/metrics", c.agg.Handler())
			mux.Handle("/stream", c.bcast)
			c.bcast.Start()
			c.agg.Start(*streamInterval)
		} else {
			mux.Handle("/metrics", c.jam.MetricsHandler())
			mux.Handle("/stream", telemetry.StreamHandler(*streamInterval,
				func(seq uint64) []telemetry.Rollup {
					return []telemetry.Rollup{telemetry.RollupFrom("jamlab", seq, live)}
				}))
		}
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		ln, err := net.Listen("tcp", *telemetryAddr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(c.out, "telemetry: http://%s/metrics, pprof at /debug/pprof/\n", ln.Addr())
		go func() { log.Fatal(http.Serve(ln, mux)) }()
	}
	var in io.Reader = os.Stdin
	if args := flag.Args(); len(args) > 0 {
		in = strings.NewReader(strings.ReplaceAll(strings.Join(args, " "), ";", "\n"))
	}
	sc := bufio.NewScanner(in)
	fmt.Fprintln(c.out, "jamlab — reactive jamming event builder (type 'quit' to exit)")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "quit" || line == "exit" {
			break
		}
		if err := c.eval(line); err != nil {
			fmt.Fprintf(c.out, "error: %v\n", err)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	c.shutdown(*traceOut)
}

// writeDump writes one flight-recorder dump as indented JSON.
func writeDump(path string, d *flight.Dump) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// shutdown dumps the trace file and prints the one-line telemetry summary.
func (c *console) shutdown(tracePath string) {
	if c.sampler != nil {
		sum, err := c.sampler.Stop()
		if err != nil {
			fmt.Fprintf(c.out, "profiling error: %v\n", err)
		}
		fmt.Fprintf(c.out, "profiling: %d CPU + %d heap captures in %s, heap %.1f MiB live\n",
			sum.CPUProfiles, sum.HeapProfiles, sum.Dir,
			float64(sum.HeapAllocBytes)/(1<<20))
	}
	if !c.jam.TelemetryEnabled() {
		return
	}
	// No anomaly fired during the session: capture a manual snapshot so
	// -flight-out always yields a dump.
	if *flightOut != "" && !c.dumped {
		d := c.flight.Trigger(flight.TriggerManual, c.cycle(), "shutdown snapshot")
		if err := writeDump(*flightOut, d); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(c.out, "flight recorder: shutdown snapshot written to %s\n", *flightOut)
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := c.jam.WriteTrace(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(c.out, "trace written to %s\n", tracePath)
	}
	if c.agg != nil {
		c.bcast.Stop()
		c.agg.Stop()
		fs := c.agg.Snapshot()
		fmt.Fprintf(c.out, "fleet: %d cell(s), SLO pass %d fail %d, %d dropped stream client(s)\n",
			len(fs.Cells), fs.SLOPassing, fs.SLOFailing, fs.StreamDroppedClients)
	}
	s := c.jam.Summary()
	fmt.Fprintf(c.out,
		"telemetry: %d samples, %d jam bursts, reaction p50 %v p99 %v, %d journal events\n",
		s.Samples, s.JamTriggers, s.ReactionP50, s.ReactionP99, s.Events)
}

func (c *console) eval(line string) error {
	f := strings.Fields(line)
	switch f[0] {
	case "detect":
		return c.detect(f[1:])
	case "personality":
		return c.personality(f[1:])
	case "inject":
		return c.inject(f[1:])
	case "timelines":
		tl := c.jam.Timelines()
		fmt.Fprintf(c.out, "Ten_det %v  Txcorr_det %v  Tinit %v  Tresp(en) %v  Tresp(xc) %v  Tjam %v\n",
			tl.EnergyDetect, tl.XCorrDetect, tl.TXInit,
			tl.ResponseEnergy, tl.ResponseXCorr, tl.JamBurst)
		return nil
	case "stats":
		st := c.jam.Poll()
		fmt.Fprintf(c.out, "samples %d  xcorr %d  energy-high %d  energy-low %d  triggers %d  jam-samples %d  reg-writes %d  polls %d\n",
			st.Samples, st.XCorrDetections, st.EnergyHighDetections,
			st.EnergyLowDetections, st.JamTriggers, st.JamSamples,
			st.RegWrites, st.HostPolls)
		return nil
	case "record":
		if len(f) < 2 {
			return fmt.Errorf("record <file>")
		}
		rec, err := capture.NewRecorder(capture.Header{
			SampleRateHz: 25_000_000,
			CenterFreqHz: 2.484e9,
		})
		if err != nil {
			return err
		}
		c.rec, c.recPath = rec, f[1]
		fmt.Fprintf(c.out, "recording jammer TX to %s\n", c.recPath)
		return nil
	case "save":
		if c.rec == nil {
			return fmt.Errorf("no recording in progress")
		}
		file, err := os.Create(c.recPath)
		if err != nil {
			return err
		}
		defer file.Close()
		if err := c.rec.Finalize(file); err != nil {
			return err
		}
		fmt.Fprintf(c.out, "saved %d samples to %s\n", c.rec.Samples(), c.recPath)
		c.rec = nil
		return nil
	case "replay":
		if len(f) < 2 {
			return fmt.Errorf("replay <file>")
		}
		file, err := os.Open(f[1])
		if err != nil {
			return err
		}
		defer file.Close()
		h, samples, err := capture.Read(file)
		if err != nil {
			return err
		}
		if err := c.setRate(int(h.SampleRateHz)); err != nil {
			return err
		}
		if _, err := c.process(samples); err != nil {
			return err
		}
		fmt.Fprintf(c.out, "replayed %d samples at %d S/s\n", len(samples), h.SampleRateHz)
		return nil
	case "reset":
		c.jam.ResetStats()
		fmt.Fprintln(c.out, "counters cleared")
		return nil
	default:
		return fmt.Errorf("unknown command %q", f[0])
	}
}

func (c *console) detect(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("detect needs a mode")
	}
	switch args[0] {
	case "wifi-short", "wifi-long":
		fa := 0.1
		if len(args) > 1 {
			v, err := strconv.ParseFloat(args[1], 64)
			if err != nil {
				return err
			}
			fa = v
		}
		if err := c.setRate(wifi.SampleRate); err != nil {
			return err
		}
		if args[0] == "wifi-short" {
			if err := c.jam.DetectWiFiShortPreamble(fa); err != nil {
				return err
			}
		} else if err := c.jam.DetectWiFiLongPreamble(fa); err != nil {
			return err
		}
		fmt.Fprintf(c.out, "armed %s template, FA target %g/s\n", args[0], fa)
		return nil
	case "wimax":
		if len(args) < 3 {
			return fmt.Errorf("detect wimax <cellID> <segment>")
		}
		cell, err := strconv.Atoi(args[1])
		if err != nil {
			return err
		}
		seg, err := strconv.Atoi(args[2])
		if err != nil {
			return err
		}
		if err := c.setRate(wimax.ActualSampleRate); err != nil {
			return err
		}
		if err := c.jam.DetectWiMAX(cell, seg); err != nil {
			return err
		}
		fmt.Fprintf(c.out, "armed WiMAX fusion detection, cell %d segment %d\n", cell, seg)
		return nil
	case "energy":
		db := 10.0
		if len(args) > 1 {
			v, err := strconv.ParseFloat(args[1], 64)
			if err != nil {
				return err
			}
			db = v
		}
		if err := c.jam.DetectEnergyRise(db); err != nil {
			return err
		}
		fmt.Fprintf(c.out, "armed energy-rise detection at %g dB\n", db)
		return nil
	default:
		return fmt.Errorf("unknown detector %q", args[0])
	}
}

func (c *console) personality(args []string) error {
	if len(args) < 4 {
		return fmt.Errorf("personality <wgn|replay|host> <uptime> <delay> <gain>")
	}
	var w reactivejam.Waveform
	switch args[0] {
	case "wgn":
		w = reactivejam.WGN
	case "replay":
		w = reactivejam.Replay
	case "host":
		w = reactivejam.HostStream
	default:
		return fmt.Errorf("unknown waveform %q", args[0])
	}
	up, err := time.ParseDuration(args[1])
	if err != nil {
		return err
	}
	delay, err := time.ParseDuration(args[2])
	if err != nil {
		return err
	}
	gain, err := strconv.ParseFloat(args[3], 64)
	if err != nil {
		return err
	}
	lat, err := c.jam.SetPersonality(reactivejam.Personality{
		Waveform: w, Uptime: up, Delay: delay, Gain: gain,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(c.out, "personality switched in %v of bus time\n", lat)
	return nil
}

func (c *console) inject(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("inject needs a kind")
	}
	switch args[0] {
	case "wifi":
		if len(args) < 4 {
			return fmt.Errorf("inject wifi <mbps> <bytes> <count>")
		}
		mbps, err := strconv.Atoi(args[1])
		if err != nil {
			return err
		}
		nbytes, err := strconv.Atoi(args[2])
		if err != nil {
			return err
		}
		count, err := strconv.Atoi(args[3])
		if err != nil {
			return err
		}
		var rate wifi.Rate
		found := false
		for _, r := range wifi.AllRates {
			if r.Mbps() == mbps {
				rate, found = r, true
			}
		}
		if !found {
			return fmt.Errorf("no %d Mbps OFDM rate", mbps)
		}
		if err := c.setRate(wifi.SampleRate); err != nil {
			return err
		}
		jammed := 0
		for i := 0; i < count; i++ {
			psdu := wifi.AppendFCS(make([]byte, nbytes))
			frame, err := wifi.Modulate(psdu, wifi.TxConfig{
				Rate: rate, ScramblerSeed: uint8(i%126) + 1,
			})
			if err != nil {
				return err
			}
			buf := c.pad(frame.Clone().Scale(0.3), 512)
			c.jam.MarkFrame(512)
			tx, err := c.process(buf)
			if err != nil {
				return err
			}
			for _, s := range tx {
				if s != 0 {
					jammed++
					break
				}
			}
		}
		fmt.Fprintf(c.out, "injected %d WiFi frames at %d Mbps; %d drew a jamming response\n",
			count, mbps, jammed)
		return nil
	case "wifib":
		if len(args) < 3 {
			return fmt.Errorf("inject wifib <bytes> <count>")
		}
		nbytes, err := strconv.Atoi(args[1])
		if err != nil {
			return err
		}
		count, err := strconv.Atoi(args[2])
		if err != nil {
			return err
		}
		if err := c.setRate(wifib.SampleRate); err != nil {
			return err
		}
		for i := 0; i < count; i++ {
			frame, err := wifib.Modulate(make([]byte, nbytes), wifib.Rate11, uint8(i%126)+1)
			if err != nil {
				return err
			}
			c.jam.MarkFrame(512)
			if _, err := c.process(c.pad(frame.Clone().Scale(0.3), 512)); err != nil {
				return err
			}
		}
		fmt.Fprintf(c.out, "injected %d 802.11b frames at 11 Mbps\n", count)
		return nil
	case "wimax":
		if len(args) < 2 {
			return fmt.Errorf("inject wimax <count>")
		}
		count, err := strconv.Atoi(args[1])
		if err != nil {
			return err
		}
		if err := c.setRate(wimax.ActualSampleRate); err != nil {
			return err
		}
		for i := 0; i < count; i++ {
			frame, err := wimax.DownlinkFrame(wimax.Config{CellID: 1, Segment: 0}, 16, int64(i))
			if err != nil {
				return err
			}
			buf := c.pad(frame[:20*wimax.SymbolLen].Clone().Scale(0.3), 2048)
			c.jam.MarkFrame(2048)
			if _, err := c.process(buf); err != nil {
				return err
			}
		}
		fmt.Fprintf(c.out, "injected %d WiMAX downlink frames\n", count)
		return nil
	case "idle":
		if len(args) < 2 {
			return fmt.Errorf("inject idle <ms>")
		}
		ms, err := strconv.ParseFloat(args[1], 64)
		if err != nil {
			return err
		}
		n := int(ms / 1000 * float64(c.rate))
		buf := make(dsp.Samples, n)
		for i := range buf {
			buf[i] = complex(c.rng.NormFloat64(), c.rng.NormFloat64()) * 1e-4
		}
		if _, err := c.process(buf); err != nil {
			return err
		}
		fmt.Fprintf(c.out, "streamed %.3g ms of noise floor\n", ms)
		return nil
	default:
		return fmt.Errorf("unknown inject kind %q", args[0])
	}
}

// process streams samples through the platform, tapping the TX output into
// an active recording, the flight recorder's I/Q scope, and the anomaly
// detector (fed synchronously so scripted sessions behave like live ones).
func (c *console) process(rx dsp.Samples) (dsp.Samples, error) {
	if c.flight != nil {
		c.flight.RecordIQ(rx)
	}
	tx, err := c.jam.Process(rx)
	if err != nil {
		return nil, err
	}
	if c.rec != nil {
		c.rec.Append(tx)
	}
	if c.det != nil {
		c.det.FeedSnapshot(c.cycle(), c.jam.Telemetry().Snapshot())
	}
	return tx, nil
}

// cycle approximates the hardware clock from the samples counter (the core
// consumes one sample per 100 MHz cycle).
func (c *console) cycle() uint64 {
	return c.jam.Telemetry().Snapshot().Counters.Samples
}

// pad surrounds a waveform with quiet lead/tail and a touch of noise so the
// detectors see realistic transitions.
func (c *console) pad(wave dsp.Samples, lead int) dsp.Samples {
	buf := make(dsp.Samples, lead+len(wave)+lead)
	copy(buf[lead:], wave)
	for i := range buf {
		buf[i] += complex(c.rng.NormFloat64(), c.rng.NormFloat64()) * 1e-4
	}
	return buf
}

func (c *console) setRate(hz int) error {
	if c.rate == hz {
		return nil
	}
	if err := c.jam.SetSourceRate(hz); err != nil {
		return err
	}
	c.rate = hz
	return nil
}
