// Command experiments regenerates every table and figure of the paper's
// evaluation from the simulation. Select an experiment with -run, or run
// them all; -full raises the statistical budgets toward the paper's
// (10,000 frames per detection point, longer iperf runs) at the cost of
// run time.
//
//	go run ./cmd/experiments -run fig6
//	go run ./cmd/experiments -run all -full
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/iperf"
	"repro/internal/telemetry"
)

var (
	runFlag      = flag.String("run", "all", "experiment: all, fig5, fig6, fig7, fig8, table1, fig10, fig11, fig12, selectivity, resources, reconfig, ablations, reaction, verdict, slo, chaos, incident, fleetobs, flowpipe")
	fullFlag     = flag.Bool("full", false, "paper-scale statistical budgets (slow)")
	parallelFlag = flag.Int("parallel", 0, "experiment worker fan-out (0 = GOMAXPROCS, 1 = sequential)")
	benchJSON    = flag.String("bench-json", "", "write a machine-readable benchmark baseline to this path and exit")
	forceFlag    = flag.Bool("force", false, "allow -bench-json to overwrite an existing baseline")
	benchDiff    = flag.String("bench-diff", "", "compare a fresh measurement against this baseline and exit non-zero on regression")
	tolerantFlag = flag.Bool("tolerant", false, "bench-diff smoke mode: short windows, loose throughput floor, no figure re-runs")
	ledgerFlag   = flag.String("ledger", "", "with -run verdict: write the per-packet JSONL verdict ledger to this path")
	chaosSeed    = flag.Int64("chaos-seed", 42, "with -run chaos: master seed of the fault-campaign sweep")
	chaosOut     = flag.String("chaos-out", "chaos_report.jsonl", "with -run chaos: JSONL campaign report path (empty to skip)")
	flightOut    = flag.String("flight-out", "incident_dump.json", "with -run incident: flight-recorder dump path (empty to skip)")
	fleetCells   = flag.Int("fleet-cells", 256, "with -run fleetobs: number of concurrent fleet cells")
	fleetSeed    = flag.Int64("fleet-seed", 7, "with -run fleetobs: master seed of the fleet drill")
	fleetOut     = flag.String("fleet-out", "fleet_ledger.jsonl", "with -run fleetobs: JSONL fleet ledger path (empty to skip)")
)

func main() {
	flag.Parse()
	sel := strings.ToLower(*runFlag)
	all := sel == "all"

	experiments.SetParallelism(*parallelFlag)

	frames := 300
	packets := 40
	wimaxFrames := 60
	if *fullFlag {
		frames = 10000
		packets = 400
		wimaxFrames = 500
		experiments.SetFACalibrationScale(25)
	}

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, *forceFlag, frames, packets); err != nil {
			log.Fatalf("bench-json: %v", err)
		}
		return
	}
	if *benchDiff != "" {
		if err := runBenchDiff(*benchDiff, *tolerantFlag, frames, packets); err != nil {
			log.Fatal(err)
		}
		return
	}

	ran := false
	run := func(name string, f func() error) {
		if !all && sel != name {
			return
		}
		ran = true
		fmt.Printf("==== %s ====\n", name)
		start := time.Now()
		if err := f(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("(%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("fig5", func() error { return fig5() })
	run("fig6", func() error { return fig6(frames) })
	run("fig7", func() error { return fig7(frames) })
	run("fig8", func() error { return fig8(frames) })
	run("table1", func() error { return table1() })
	run("fig10", func() error { return fig10and11(packets, true) })
	run("fig11", func() error { return fig10and11(packets, false) })
	run("fig12", func() error { return fig12(wimaxFrames) })
	run("selectivity", func() error { return selectivity(frames / 3) })
	run("resources", func() error { return resources() })
	run("reconfig", func() error { return reconfig() })
	run("ablations", func() error { return ablations() })
	run("reaction", func() error { return reaction(frames / 3) })
	run("verdict", func() error { return runVerdict(frames/6, *ledgerFlag) })
	run("slo", func() error { return runSLO(frames / 3) })
	run("chaos", func() error { return runChaos(*chaosSeed, 12, *chaosOut) })
	run("incident", func() error { return runIncident(*flightOut) })
	run("fleetobs", func() error {
		return runFleetObs(*fleetCells, fleetFrames(frames), *fleetSeed, *fleetOut)
	})
	run("flowpipe", func() error { return runFlowPipe(*fullFlag) })

	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", sel)
		flag.Usage()
		os.Exit(2)
	}
}

// fleetFrames derives the per-cell engagement count from the statistical
// frame budget: 1/50th of the single-cell budget, clamped so a -full run
// does not multiply it by the whole fleet.
func fleetFrames(frames int) int {
	per := frames / 50
	if per < 3 {
		per = 3
	}
	if per > 24 {
		per = 24
	}
	return per
}

func reaction(frames int) error {
	fmt.Println("measured reaction latency, energy trigger on 802.11g frames")
	fmt.Println("(paper Fig. 5 budget: Ten_det 1.28 µs + Tinit 80 ns = 1.36 µs,")
	fmt.Println(" plus the receive front end's resampler group delay)")
	res, err := experiments.MeasureReactionLatency(experiments.ReactionConfig{
		Frames: frames, Seed: 7,
	})
	if err != nil {
		return err
	}
	fmt.Printf("  frames %d, jam bursts %d\n", res.Frames, res.Triggered)
	fmt.Printf("  reaction p50 %v  p99 %v\n", res.ReactionP50, res.ReactionP99)
	fmt.Printf("  trigger→RF p50 %v (Tinit, paper: ≈80 ns)\n", res.TriggerToRFP50)
	h := res.Snapshot.Histogram(telemetry.HistReaction)
	telemetry.WriteHistogramTable(os.Stdout, h)
	return nil
}

func fig5() error {
	fmt.Println("reactive jamming timelines (paper §3.1, Fig. 5)")
	tl := experiments.Fig5(100 * time.Microsecond)
	fmt.Printf("  Ten_det     %8v   (paper: < 1.28 µs)\n", tl.TenDet)
	fmt.Printf("  Txcorr_det  %8v   (paper: = 2.56 µs)\n", tl.TxcorrDet)
	fmt.Printf("  Tinit       %8v   (paper: ≈ 80 ns)\n", tl.TInit)
	fmt.Printf("  Tresp (en)  %8v   (paper: < 1.36 µs)\n", tl.TRespEnergy)
	fmt.Printf("  Tresp (xc)  %8v   (paper: ≤ 2.64 µs)\n", tl.TRespXCorr)
	fmt.Printf("  Tjam        %8v   (selectable 40 ns – 40 s)\n", tl.TJam)
	return nil
}

func printDetection(res *experiments.DetectionResult, perFrame bool) {
	fmt.Printf("  false alarms: %.3f/s over %.2f s of terminated input\n",
		res.FalseAlarmsPerSec, res.FACalibrationSec)
	for _, p := range res.Points {
		if perFrame {
			fmt.Printf("  SNR %+5.1f dB   Pd %5.3f   detections/frame %.2f\n",
				p.SNRdB, p.Pd, p.DetectionsPerFrame)
			continue
		}
		fmt.Printf("  SNR %+5.1f dB   Pd %5.3f\n", p.SNRdB, p.Pd)
	}
}

func fig6(frames int) error {
	fmt.Println("cross-correlator detection, WiFi long preamble (paper Fig. 6)")
	for _, c := range []struct {
		label string
		kind  experiments.FrameKind
		tight bool
	}{
		{"single long preambles, FA target 0.52/s", experiments.SingleLongPreamble, false},
		{"single long preambles, FA target 0.083/s", experiments.SingleLongPreamble, true},
		{"full WiFi frames,      FA target 0.52/s", experiments.FullFrame, false},
		{"full WiFi frames,      FA target 0.083/s", experiments.FullFrame, true},
	} {
		fmt.Printf(" %s:\n", c.label)
		res, err := experiments.CharacterizeDetection(
			experiments.Fig6Config(c.kind, c.tight, frames))
		if err != nil {
			return err
		}
		printDetection(res, false)
	}
	return nil
}

func fig7(frames int) error {
	fmt.Println("cross-correlator detection, WiFi short preamble, full frames")
	fmt.Println("(paper Fig. 7: >90% at -3 dB, >99% above 3 dB, FA 0.059/s)")
	res, err := experiments.CharacterizeDetection(experiments.Fig7Config(frames))
	if err != nil {
		return err
	}
	printDetection(res, false)
	return nil
}

func fig8(frames int) error {
	fmt.Println("energy differentiator detection, full WiFi frames, 10 dB threshold")
	fmt.Println("(paper Fig. 8: none below -3 dB, excessive detections in the")
	fmt.Println(" transition band, exactly one per frame at high SNR)")
	res, err := experiments.CharacterizeDetection(experiments.Fig8Config(frames))
	if err != nil {
		return err
	}
	printDetection(res, true)
	return nil
}

func table1() error {
	fmt.Println("5-port network insertion losses (paper Table 1, dB)")
	tab := experiments.Table1()
	fmt.Printf("  in\\out %8d %8d %8d %8d %8d\n", 1, 2, 3, 4, 5)
	for i, row := range tab {
		fmt.Printf("  %6d", i+1)
		for _, v := range row {
			if math.IsNaN(v) {
				fmt.Printf(" %8s", "-")
				continue
			}
			fmt.Printf(" %8.1f", v)
		}
		fmt.Println()
	}
	return nil
}

func fig10and11(packets int, bandwidth bool) error {
	if bandwidth {
		fmt.Println("UDP bandwidth vs measured SIR at the AP (paper Fig. 10)")
	} else {
		fmt.Println("packet reception ratio vs measured SIR at the AP (paper Fig. 11)")
	}
	base, err := experiments.BaselineBandwidthKbps(packets, 1)
	if err != nil {
		return err
	}
	fmt.Printf("  jammer off: %.1f Mbps, PRR 1.00 (paper: ~29 Mbps)\n", base/1000)
	for _, ty := range []struct {
		name   string
		mode   iperf.JamMode
		uptime time.Duration
	}{
		{"continuous", iperf.JamContinuous, 0},
		{"reactive 0.1ms", iperf.JamReactive, 100 * time.Microsecond},
		{"reactive 0.01ms", iperf.JamReactive, 10 * time.Microsecond},
	} {
		cfg := experiments.DefaultJamSweep(ty.mode, ty.uptime)
		cfg.Packets = packets
		pts, err := experiments.RunJamSweep(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("  %s:\n", ty.name)
		for _, p := range pts {
			if bandwidth {
				fmt.Printf("    SIR %6.1f dB   %8.0f Kbps\n",
					p.Result.SIRdB, p.Result.BandwidthKbps)
				continue
			}
			fmt.Printf("    SIR %6.1f dB   PRR %.2f\n", p.Result.SIRdB, p.Result.PRR)
		}
	}
	return nil
}

func fig12(frames int) error {
	fmt.Println("WiMAX downlink reactive jamming (paper §5, Fig. 12)")
	res, err := experiments.Fig12WiMAX(frames, 5)
	if err != nil {
		return err
	}
	fmt.Printf("  frames                  %d\n", res.Frames)
	fmt.Printf("  xcorr-only Pd           %.2f   (paper: ~1/3)\n", res.XCorrOnlyPd)
	fmt.Printf("  xcorr+energy Pd         %.2f   (paper: 1.00)\n", res.CombinedPd)
	fmt.Printf("  jam bursts              %d\n", res.JamBursts)
	fmt.Printf("  1:1 frame/burst         %v\n", res.OneToOne)
	return nil
}

func selectivity(frames int) error {
	fmt.Println("protocol selectivity: per-frame trigger probability of each")
	fmt.Println("template against each transmitted standard (§2.3: react to only")
	fmt.Println("packets of a single wireless standard; energy detector fires on all)")
	res, err := experiments.Selectivity(frames, 15, 9)
	if err != nil {
		return err
	}
	fmt.Printf("  %14s", "template\\signal")
	for _, s := range experiments.AllStandards {
		fmt.Printf(" %9v", s)
	}
	fmt.Println()
	for ti, tplStd := range experiments.AllStandards {
		fmt.Printf("  %14v", tplStd)
		for si := range experiments.AllStandards {
			fmt.Printf(" %9.2f", res.Pd[ti][si])
		}
		fmt.Println()
	}
	fmt.Printf("  %14s", "energy-only")
	for si := range experiments.AllStandards {
		fmt.Printf(" %9.2f", res.EnergyPd[si])
	}
	fmt.Println()
	return nil
}

func resources() error {
	fmt.Println("FPGA resource utilization (papers Figs. 3/4 insets)")
	r := experiments.Resources()
	fmt.Printf("  cross-correlator  %s\n", r.XCorr)
	fmt.Printf("  energy diff       %s\n", r.Energy)
	fmt.Printf("  jam controller    %s (estimated)\n", r.Jammer)
	fmt.Printf("  total             %s\n", r.Total)
	return nil
}

func reconfig() error {
	fmt.Println("run-time reconfigurability (paper §4.3)")
	p, d, err := experiments.ReconfigLatency()
	if err != nil {
		return err
	}
	fmt.Printf("  jammer personality switch  %v (4 register writes)\n", p)
	fmt.Printf("  full detector reprogram    %v (18 register writes)\n", d)
	fmt.Println("  (no FPGA reprogramming in either case)")
	return nil
}

func ablations() error {
	fmt.Println("ablation: correlator variants (single long preamble)")
	rows, err := experiments.AblationCorrelators([]float64{-6, -2, 2, 6}, 200, 3)
	if err != nil {
		return err
	}
	fmt.Printf("  %8s %10s %10s %10s %12s\n", "SNR(dB)", "hardware", "float64", "float128t", "raw-rate")
	for _, r := range rows {
		fmt.Printf("  %8.1f %10.2f %10.2f %10.2f %12.2f\n",
			r.SNRdB, r.HardwarePd, r.FullPrecisionPd, r.FullPrecision128Pd, r.RawRateTemplatePd)
	}

	fmt.Println("ablation: energy moving-sum window")
	ew, err := experiments.AblationEnergyWindow([]int{8, 16, 32, 64, 128}, 200, 4)
	if err != nil {
		return err
	}
	for _, r := range ew {
		fmt.Printf("  N=%-4d latency %5.2f µs   Pd(12 dB burst) %.2f\n",
			r.Window, r.LatencyUS, r.Pd)
	}

	fmt.Println("ablation: front-end impairments (full frames at -3 dB SNR)")
	ir, err := experiments.AblationImpairments(200, -3, 5)
	if err != nil {
		return err
	}
	for _, r := range ir {
		fmt.Printf("  %-16s Pd %.2f\n", r.Label, r.Pd)
	}

	fmt.Println("ablation: hard vs soft-decision victim receiver (burst at ~8 dB SIR)")
	sd, err := experiments.AblationSoftDecision([]int{0, 2, 4, 8, 16}, 60, 6)
	if err != nil {
		return err
	}
	for _, r := range sd {
		fmt.Printf("  burst %2d symbols   hard FER %.2f   soft FER %.2f\n",
			r.BurstSymbols, r.HardFER, r.SoftFER)
	}

	fmt.Println("ablation: jamming waveform presets (reactive, 0.1 ms, 5 dB pad)")
	wf, err := experiments.AblationWaveforms(12, 5, 2)
	if err != nil {
		return err
	}
	for _, r := range wf {
		fmt.Printf("  %-12v PRR %.2f at SIR %.1f dB\n", r.Waveform, r.PRR, r.SIRdB)
	}
	return nil
}
