package main

import (
	"bytes"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/telemetry"
	"repro/internal/telemetry/fleet"
)

// runFleetObs runs the fleet observability drill: N concurrent cells
// through the worker pool, merged by the fleet aggregation plane, then
// three acceptance checks — bit-for-bit reconciliation of every cell
// against its own recorder, zero journal drops fleet-wide, and an
// OpenMetrics scrape inside the cell-label cardinality budget. The JSONL
// fleet ledger (byte-stable per seed, modulo wall_ms) goes to ledgerPath
// when non-empty.
func runFleetObs(cells, framesPerCell int, seed int64, ledgerPath string) error {
	fmt.Printf("fleet observability drill: %d cells × %d frames, seed %d\n",
		cells, framesPerCell, seed)
	start := time.Now()
	res, err := experiments.RunFleetObs(experiments.FleetObsConfig{
		Cells:         cells,
		FramesPerCell: framesPerCell,
		Seed:          seed,
	})
	if err != nil {
		return err
	}
	wall := time.Since(start)

	if err := res.Reconcile(); err != nil {
		return err
	}
	fmt.Printf("  reconciled: fleet figures match all %d cell recorders bit-for-bit\n",
		len(res.Outcomes))
	s := res.Snap
	if s.Total.Dropped != 0 {
		return fmt.Errorf("fleetobs: %d journal events dropped fleet-wide", s.Total.Dropped)
	}

	var scrape bytes.Buffer
	if err := s.WriteOpenMetrics(&scrape, res.Agg.LabelBudget()); err != nil {
		return err
	}
	labelled, err := fleet.LintMetrics(bytes.NewReader(scrape.Bytes()), res.Agg.LabelBudget())
	if err != nil {
		return fmt.Errorf("fleetobs: scrape lint: %w", err)
	}
	fmt.Printf("  scrape: %d bytes, %d labelled cells (budget %d), lint clean\n",
		scrape.Len(), labelled, res.Agg.LabelBudget())

	fmt.Printf("  cells %d   SLO pass %d   fail %d   journal drops %d\n",
		len(s.Cells), s.SLOPassing, s.SLOFailing, s.Total.Dropped)
	fmt.Printf("  fleet frames %d, jammed %d (FN rate %.4f)\n",
		s.Total.Frames, s.Total.Jammed, s.Total.FNRate)
	fmt.Printf("  fleet reaction p50 %v  p99 %v   trigger→RF p99 %v\n",
		telemetry.CyclesToDuration(s.Total.Reaction.P50),
		telemetry.CyclesToDuration(s.Total.Reaction.P99),
		telemetry.CyclesToDuration(s.Total.TriggerToRF.P99))
	printRanks("worst reaction p99 (cycles)", s.WorstReactionP99)
	printRanks("worst FN rate", s.WorstFNRate)
	printRanks("worst journal drops", s.WorstDropped)

	if ledgerPath != "" {
		f, err := os.Create(ledgerPath)
		if err != nil {
			return err
		}
		meta := fleet.LedgerMeta{
			Scenario: "fleetobs",
			Seed:     seed,
			WallMS:   float64(wall.Microseconds()) / 1000,
		}
		if err := fleet.WriteLedger(f, s, meta); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("  wrote %d ledger rows to %s\n", len(s.Cells)+1, ledgerPath)
	}
	fmt.Printf("  %.0f cells/s through the aggregation plane\n",
		float64(cells)/wall.Seconds())
	return nil
}

func printRanks(label string, ranks []fleet.Rank) {
	if len(ranks) == 0 {
		return
	}
	fmt.Printf("  %s:\n", label)
	for _, r := range ranks {
		fmt.Printf("    %-12s %g\n", r.Cell, r.Value)
	}
}
