package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"
)

// bench-diff compares a fresh measurement against a committed BENCH_*.json
// baseline and fails on regression. Two modes:
//
//   - full (default): 300 ms throughput windows with a 0.60 ratio floor,
//     plus exact comparison of every figure in the baseline — the figures
//     come from seeded experiments, so any difference is a behaviour
//     change, not noise.
//   - tolerant (-tolerant, used by `make ci`): 40 ms throughput windows
//     with a 0.35 ratio floor and no figure re-runs, sized so the check
//     fits a CI smoke budget and loaded machines cannot fail it spuriously
//     while a genuine order-of-magnitude datapath regression still trips.
//
// Both modes additionally gate the fresh block-over-scalar ratio: the fused
// block datapath must never lose to the per-sample path, so core_block /
// core_per_sample of the FRESH measurement (not the baseline) must stay at
// or above blockFloor — 1.0 in full mode, 0.9 tolerant to absorb the short
// window's noise.
// Full mode also gates experiment wall clock: each experiment that exists in
// the baseline must finish within wallCeiling times its recorded duration,
// catching large end-to-end slowdowns the kernel throughput ratios miss.
// Both modes also gate the fresh telemetry overhead: the live recorder plus
// fleet plane must cost at most overheadCeil percent of block throughput —
// 3% in full mode, loosened to 15% tolerant where the short window's noise
// dominates the measurement.
// Both modes also gate the fresh pipeline-over-sync ratio: the pipelined
// flowgraph scheduler must earn its rings. With more than one core, full
// mode requires it to at least match the synchronous scheduler (floor 1.0);
// on a single-core host parallelism cannot pay, so the floor relaxes to
// 0.85 — the rings may cost scheduling overhead but not more (the ratio
// measures 0.89–0.96 on the single-core CI box). Tolerant mode uses 0.8
// everywhere to absorb the short window's noise.
type benchDiffMode struct {
	window       time.Duration
	ratioFloor   float64
	blockFloor   float64
	pipeFloor    float64
	overheadCeil float64
	wallCeiling  float64
	figures      bool
	label        string
}

func benchDiffModeFor(tolerant bool) benchDiffMode {
	if tolerant {
		return benchDiffMode{window: 40 * time.Millisecond, ratioFloor: 0.35, blockFloor: 0.9, pipeFloor: 0.8, overheadCeil: 15, figures: false, label: "tolerant"}
	}
	pipeFloor := 1.0
	if runtime.GOMAXPROCS(0) == 1 {
		pipeFloor = 0.85
	}
	return benchDiffMode{window: 300 * time.Millisecond, ratioFloor: 0.60, blockFloor: 1.0, pipeFloor: pipeFloor, overheadCeil: 3, wallCeiling: 2.0, figures: true, label: "full"}
}

// runBenchDiff measures the current tree and diffs it against the baseline.
func runBenchDiff(baselinePath string, tolerant bool, frames, packets int) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("bench-diff: read baseline: %w", err)
	}
	var base BenchReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("bench-diff: parse %s: %w", baselinePath, err)
	}
	// Re-run at the budgets the baseline was recorded with, when it says.
	if base.Frames > 0 {
		frames = base.Frames
	}
	if base.Packets > 0 {
		packets = base.Packets
	}
	mode := benchDiffModeFor(tolerant)
	fmt.Printf("bench-diff (%s) against %s (recorded %s, %s)\n",
		mode.label, baselinePath, base.Date, base.GoVersion)

	fresh := &BenchReport{Figures: map[string]float64{}}
	if err := throughputSection(fresh, mode.window); err != nil {
		return err
	}
	if err := fleetSection(fresh, mode.window); err != nil {
		return err
	}

	failures := 0
	check := func(name string, baseV, freshV float64) {
		if baseV <= 0 {
			fmt.Printf("  skip %-22s baseline has no figure\n", name)
			return
		}
		ratio := freshV / baseV
		status := "ok  "
		if ratio < mode.ratioFloor {
			status = "FAIL"
			failures++
		}
		fmt.Printf("  %s %-22s %8.2f -> %8.2f Msps  (%.2fx, floor %.2fx)\n",
			status, name, baseV, freshV, ratio, mode.ratioFloor)
	}
	check("core_per_sample", base.ThroughputMsps.CorePerSample, fresh.ThroughputMsps.CorePerSample)
	check("core_block", base.ThroughputMsps.CoreBlock, fresh.ThroughputMsps.CoreBlock)
	check("core_block_parallel", base.ThroughputMsps.CoreBlockParallel, fresh.ThroughputMsps.CoreBlockParallel)
	check("xcorr_packed", base.ThroughputMsps.XCorrPacked, fresh.ThroughputMsps.XCorrPacked)
	check("xcorr_reference", base.ThroughputMsps.XCorrReference, fresh.ThroughputMsps.XCorrReference)
	check("wifi_tx", base.ThroughputMsps.WiFiTx, fresh.ThroughputMsps.WiFiTx)
	check("wifi_rx", base.ThroughputMsps.WiFiRx, fresh.ThroughputMsps.WiFiRx)
	check("flow_sync", base.ThroughputMsps.FlowSync, fresh.ThroughputMsps.FlowSync)
	check("flow_pipeline", base.ThroughputMsps.FlowPipeline, fresh.ThroughputMsps.FlowPipeline)

	// Fleet drill rate against the baseline (skipped when the baseline
	// predates the fleet plane). Cells/s is not Msps, but the same ratio
	// floor catches the same order-of-magnitude regressions.
	if base.FleetCellsPerSec > 0 {
		ratio := fresh.FleetCellsPerSec / base.FleetCellsPerSec
		status := "ok  "
		if ratio < mode.ratioFloor {
			status = "FAIL"
			failures++
		}
		fmt.Printf("  %s %-22s %8.0f -> %8.0f cells/s  (%.2fx, floor %.2fx)\n",
			status, "fleet_cells_per_sec", base.FleetCellsPerSec,
			fresh.FleetCellsPerSec, ratio, mode.ratioFloor)
	} else {
		fmt.Printf("  skip %-22s baseline has no figure\n", "fleet_cells_per_sec")
	}

	// Telemetry overhead gate on the fresh measurement: observability that
	// costs more than the ceiling is a regression regardless of baseline.
	{
		status := "ok  "
		if fresh.TelemetryOverheadPct > mode.overheadCeil {
			status = "FAIL"
			failures++
		}
		fmt.Printf("  %s %-22s %.2f%% of block throughput  (ceiling %.0f%%)\n",
			status, "telemetry_overhead_pct", fresh.TelemetryOverheadPct, mode.overheadCeil)
	}

	// Block-over-scalar gate on the fresh measurement: the block datapath
	// losing to the scalar path is a regression regardless of the baseline.
	if bos := fresh.ThroughputMsps.BlockOverScalar; bos > 0 {
		status := "ok  "
		if bos < mode.blockFloor {
			status = "FAIL"
			failures++
		}
		fmt.Printf("  %s %-22s block %.2f / scalar %.2f = %.2fx  (floor %.2fx)\n",
			status, "block_over_scalar", fresh.ThroughputMsps.CoreBlock,
			fresh.ThroughputMsps.CorePerSample, bos, mode.blockFloor)
	}

	// Pipeline-over-sync gate on the fresh measurement: the pipelined
	// scheduler losing to the synchronous one (beyond the mode's floor) is
	// a regression regardless of the baseline. RunFlowPipe already proved
	// the two bit-identical before this ratio was measured.
	if pos := fresh.ThroughputMsps.PipelineOverSync; pos > 0 {
		status := "ok  "
		if pos < mode.pipeFloor {
			status = "FAIL"
			failures++
		}
		fmt.Printf("  %s %-22s pipeline %.2f / sync %.2f = %.2fx  (floor %.2fx)\n",
			status, "pipeline_over_sync", fresh.ThroughputMsps.FlowPipeline,
			fresh.ThroughputMsps.FlowSync, pos, mode.pipeFloor)
	}

	if mode.figures && len(base.Figures) > 0 {
		fmt.Printf("  re-running experiments for figure comparison (%d frames, %d packets)...\n",
			frames, packets)
		if err := experimentSection(fresh, frames, packets); err != nil {
			return err
		}
		for _, k := range sortedKeys(base.Figures) {
			bv := base.Figures[k]
			fv, ok := fresh.Figures[k]
			switch {
			case !ok:
				fmt.Printf("  FAIL %-28s baseline %g, fresh run did not produce it\n", k, bv)
				failures++
			case fv != bv:
				fmt.Printf("  FAIL %-28s baseline %g, fresh %g (seeded figure changed)\n", k, bv, fv)
				failures++
			default:
				fmt.Printf("  ok   %-28s %g\n", k, bv)
			}
		}

		// Experiment wall-clock ceiling against the baseline's recordings.
		baseWall := make(map[string]float64, len(base.Experiments))
		for _, e := range base.Experiments {
			baseWall[e.Name] = e.WallClockMS
		}
		for _, e := range fresh.Experiments {
			bw := baseWall[e.Name]
			if bw <= 0 {
				continue
			}
			ratio := e.WallClockMS / bw
			status := "ok  "
			if ratio > mode.wallCeiling {
				status = "FAIL"
				failures++
			}
			fmt.Printf("  %s %-28s %8.0f -> %8.0f ms  (%.2fx, ceiling %.2fx)\n",
				status, e.Name+" wall", bw, e.WallClockMS, ratio, mode.wallCeiling)
		}
	}
	if failures > 0 {
		return fmt.Errorf("bench-diff: %d regression(s) against %s", failures, baselinePath)
	}
	fmt.Println("  no regressions")
	return nil
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
