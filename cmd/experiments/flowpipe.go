package main

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/experiments"
)

// runFlowPipe runs the E20 scheduler comparison: bit-exactness of the
// pipelined flowgraph runtime against the synchronous reference on the host
// datapath, then a throughput sweep across chunk sizes. RunFlowPipe fails
// outright on any output divergence, so a printed table implies the
// exactness gate passed.
func runFlowPipe(full bool) error {
	cfg := experiments.FlowPipeConfig{Seed: 11}
	if full {
		cfg.TotalSamples = 8_000_000
		cfg.MinDuration = 500 * time.Millisecond
	}
	fmt.Printf("flowgraph scheduler comparison: sync reference vs backpressured pipeline\n")
	fmt.Printf("(GOMAXPROCS %d; pipeline parallelism needs >1 core to pay for its rings)\n",
		runtime.GOMAXPROCS(0))
	res, err := experiments.RunFlowPipe(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("  bit-exactness: %d samples per chunk size, sync == pipelined\n",
		res.VerifiedSamples)
	fmt.Printf("  %8s %12s %14s %8s %16s\n",
		"chunk", "sync Msps", "pipeline Msps", "ratio", "stalls (p/c)")
	for _, p := range res.Points {
		fmt.Printf("  %8d %12.2f %14.2f %7.2fx %10d/%d\n",
			p.Chunk, p.SyncMsps, p.PipelineMsps, p.Ratio,
			p.ProducerStalls, p.ConsumerStalls)
	}
	best := res.Best()
	fmt.Printf("  best pipeline rate %.2f Msps at chunk %d (%.1fx real-time at 25 MSPS)\n",
		best.PipelineMsps, best.Chunk, best.PipelineMsps/25)
	return nil
}
