package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/experiments"
	"repro/internal/fixed"
	"repro/internal/host"
	"repro/internal/iperf"
	"repro/internal/radio"
	"repro/internal/telemetry"
	"repro/internal/telemetry/fleet"
	"repro/internal/telemetry/profile"
	"repro/internal/wifi"
	"repro/internal/xcorr"
)

// BenchReport is the machine-readable benchmark baseline written by
// -bench-json (the `make bench-json` target). It captures the datapath
// throughput, per-experiment wall clock, and the headline detection figures
// so a later commit can diff performance and correctness in one file.
type BenchReport struct {
	Date        string `json:"date"`
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	Parallelism int    `json:"parallelism"`
	// Frames and Packets record the statistical budgets the figures were
	// measured at, so bench-diff can re-run with identical budgets (older
	// baselines without them fall back to the current defaults).
	Frames  int `json:"frames,omitempty"`
	Packets int `json:"packets,omitempty"`

	// ThroughputMsps reports the sample-rate of each datapath entry point in
	// millions of samples per second. The real hardware runs at 25 MSPS; any
	// figure above 25 means the model is faster than real time.
	ThroughputMsps struct {
		CorePerSample float64 `json:"core_per_sample"`
		CoreBlock     float64 `json:"core_block"`
		// CoreBlockParallel is the aggregate rate of GOMAXPROCS independent
		// cores each running the block path — the multi-channel deployment
		// shape. BlockWorkers records how many goroutines contributed
		// (older baselines without these fields diff cleanly).
		CoreBlockParallel float64 `json:"core_block_parallel,omitempty"`
		BlockWorkers      int     `json:"block_workers,omitempty"`
		XCorrPacked       float64 `json:"xcorr_packed"`
		XCorrReference    float64 `json:"xcorr_reference"`
		PackedOverRef     float64 `json:"packed_over_reference"`
		// BlockOverScalar is CoreBlock / CorePerSample: the fused block
		// datapath must never lose to the scalar path, so bench-diff gates
		// on this ratio staying >= 1.
		BlockOverScalar float64 `json:"block_over_scalar,omitempty"`
		// WiFiTx and WiFiRx are the 802.11a/g modem batch-codec rates: one
		// 1000-byte PSDU at 54 Mb/s modulated (TxFrame) and demodulated
		// (RxFrame, including sync search and Viterbi decode) per call.
		// Older baselines without them diff cleanly.
		WiFiTx float64 `json:"wifi_tx_Msps,omitempty"`
		WiFiRx float64 `json:"wifi_rx_Msps,omitempty"`
		// FlowSync and FlowPipeline are the flowgraph runtime's rates on the
		// full host datapath graph (source+noise→impairments→core→sink with
		// a probe tap): the synchronous reference scheduler versus the
		// backpressured pipelined one, measured after a bit-exactness check.
		// PipelineOverSync is their ratio; bench-diff gates it — the rings
		// must not cost more than scheduling noise on one core, and must
		// win outright once GOMAXPROCS > 1. Older baselines without these
		// fields diff cleanly.
		FlowSync         float64 `json:"flow_sync_Msps,omitempty"`
		FlowPipeline     float64 `json:"flow_pipeline_Msps,omitempty"`
		PipelineOverSync float64 `json:"pipeline_over_sync,omitempty"`
	} `json:"throughput_msps"`

	// FleetCellsPerSec is the fleet observability drill's rate: cells run,
	// merged, SLO-evaluated and reconciled per second through the fleet
	// aggregation plane (older baselines without it diff cleanly).
	FleetCellsPerSec float64 `json:"fleet_cells_per_sec,omitempty"`
	// TelemetryOverheadPct is the block-datapath throughput cost of running
	// with the live recorder attached and the fleet plane snapshotting in
	// the background, relative to a bare core. bench-diff gates the fresh
	// value at 3% in full mode. Zero means the cost was below the run's
	// measurement noise.
	TelemetryOverheadPct float64 `json:"telemetry_overhead_pct"`

	// Experiments lists wall-clock per experiment at the report's budgets.
	Experiments []ExperimentTiming `json:"experiments"`

	// Figures carries the key detection-probability results so a performance
	// regression that changes behaviour is caught by the same diff.
	Figures map[string]float64 `json:"figures"`

	// Profile summarizes the process's memory/GC state after the benchmark
	// runs (older baselines without it still parse and diff cleanly).
	Profile *profile.Summary `json:"profile,omitempty"`
}

// ExperimentTiming is one experiment's wall-clock entry.
type ExperimentTiming struct {
	Name        string  `json:"name"`
	WallClockMS float64 `json:"wall_clock_ms"`
}

// measureThroughput runs process (which consumes blockLen samples per call)
// for roughly the given duration and returns millions of samples per second.
func measureThroughput(blockLen int, minDur time.Duration, process func()) float64 {
	// Warm up once so one-time setup (scratch growth, warmup masks) is
	// excluded from the measured window.
	process()
	start := time.Now()
	n := 0
	for time.Since(start) < minDur {
		process()
		n += blockLen
	}
	return float64(n) / time.Since(start).Seconds() / 1e6
}

// benchInput builds the 4096-sample buffer BenchmarkCorePerSample uses, so
// the JSON figures and the Go benchmark measure the same workload.
func benchInput() []complex128 {
	buf := make([]complex128, 4096)
	for i := range buf {
		buf[i] = complex(float64(i%7)*0.01, 0)
	}
	return buf
}

// benchCore assembles the short-preamble detection core behind a radio front
// end, matching the benchmark configuration.
func benchCore() (*core.Core, error) {
	r := radio.New()
	h := host.New(r.Core())
	if _, err := h.ProgramCorrelator(host.WiFiShortTemplate(), 0.1); err != nil {
		return nil, err
	}
	if _, err := h.ProgramEnergy(10, 0); err != nil {
		return nil, err
	}
	r.Start()
	return r.Core(), nil
}

func throughputSection(rep *BenchReport, window time.Duration) error {
	buf := benchInput()

	c, err := benchCore()
	if err != nil {
		return err
	}
	rep.ThroughputMsps.CorePerSample = measureThroughput(len(buf), window, func() {
		for _, s := range buf {
			c.ProcessSample(s)
		}
	})

	c, err = benchCore()
	if err != nil {
		return err
	}
	tx := make([]complex128, len(buf))
	rep.ThroughputMsps.CoreBlock = measureThroughput(len(buf), window, func() {
		c.ProcessBlock(buf, tx)
	})

	if rep.ThroughputMsps.CorePerSample > 0 {
		rep.ThroughputMsps.BlockOverScalar =
			rep.ThroughputMsps.CoreBlock / rep.ThroughputMsps.CorePerSample
	}

	// Parallel block throughput: one independent core per GOMAXPROCS worker,
	// all running the block path at once, summed.
	workers := runtime.GOMAXPROCS(0)
	cores := make([]*core.Core, workers)
	for i := range cores {
		if cores[i], err = benchCore(); err != nil {
			return err
		}
	}
	txs := make([][]complex128, workers)
	for i := range txs {
		txs[i] = make([]complex128, len(buf))
	}
	rep.ThroughputMsps.BlockWorkers = workers
	rep.ThroughputMsps.CoreBlockParallel = measureThroughput(len(buf)*workers, window, func() {
		var wg sync.WaitGroup
		wg.Add(workers)
		for i := 0; i < workers; i++ {
			go func(i int) {
				defer wg.Done()
				cores[i].ProcessBlock(buf, txs[i])
			}(i)
		}
		wg.Wait()
	})

	// Kernel-only comparison: the packed popcount correlator against the
	// scalar reference on identical quantized input.
	iq := make([]fixed.IQ, len(buf))
	for i, s := range buf {
		iq[i] = fixed.Quantize(s)
	}
	iC, qC := xcorr.CoefficientsFromTemplate(host.WiFiShortTemplate())
	packed := xcorr.New()
	if err := packed.SetCoefficients(iC, qC); err != nil {
		return err
	}
	rep.ThroughputMsps.XCorrPacked = measureThroughput(len(iq), window, func() {
		for _, q := range iq {
			packed.Process(q)
		}
	})
	ref := xcorr.NewReference()
	if err := ref.SetCoefficients(iC, qC); err != nil {
		return err
	}
	rep.ThroughputMsps.XCorrReference = measureThroughput(len(iq), window, func() {
		for _, q := range iq {
			ref.Process(q)
		}
	})
	if rep.ThroughputMsps.XCorrReference > 0 {
		rep.ThroughputMsps.PackedOverRef =
			rep.ThroughputMsps.XCorrPacked / rep.ThroughputMsps.XCorrReference
	}

	// Modem batch codecs: one 1000-byte PSDU at 54 Mb/s per call. The RX
	// search window brackets the long preamble start at sample 192.
	psdu := make([]byte, 1000)
	for i := range psdu {
		psdu[i] = byte(i * 7)
	}
	cfg := wifi.TxConfig{Rate: wifi.Rate54, ScramblerSeed: 0x5D}
	frameLen := wifi.FrameDuration(cfg.Rate, len(psdu))
	var txc wifi.TxCodec
	frame := make(dsp.Samples, 0, frameLen)
	frame, err = txc.TxFrame(frame, psdu, cfg)
	if err != nil {
		return err
	}
	rep.ThroughputMsps.WiFiTx = measureThroughput(frameLen, window, func() {
		frame, _ = txc.TxFrame(frame[:0], psdu, cfg)
	})
	var rxc wifi.RxCodec
	if _, err := rxc.RxFrame(frame, 144, 240); err != nil {
		return err
	}
	rep.ThroughputMsps.WiFiRx = measureThroughput(frameLen, window, func() {
		rxc.RxFrame(frame, 144, 240) //nolint:errcheck // checked once above
	})

	// Flowgraph schedulers on the full host datapath graph: one chunk size
	// (the default 4096) is enough for the gate; the flowpipe experiment
	// sweeps more. RunFlowPipe verifies bit-exactness before timing.
	fp, err := experiments.RunFlowPipe(experiments.FlowPipeConfig{
		TotalSamples:  1 << 20,
		VerifySamples: 1 << 17,
		Chunks:        []int{4096},
		Seed:          11,
		MinDuration:   window,
	})
	if err != nil {
		return err
	}
	rep.ThroughputMsps.FlowSync = fp.Points[0].SyncMsps
	rep.ThroughputMsps.FlowPipeline = fp.Points[0].PipelineMsps
	rep.ThroughputMsps.PipelineOverSync = fp.Points[0].Ratio
	return nil
}

// fleetSection measures the fleet telemetry plane: the fleetobs drill rate
// in cells per second (including reconciliation) and the telemetry overhead
// of the instrumented block datapath against a bare core.
func fleetSection(rep *BenchReport, window time.Duration) error {
	cells := 64
	if window < 100*time.Millisecond {
		cells = 16
	}
	start := time.Now()
	res, err := experiments.RunFleetObs(experiments.FleetObsConfig{
		Cells: cells, FramesPerCell: 3, Seed: 7,
	})
	if err != nil {
		return err
	}
	if err := res.Reconcile(); err != nil {
		return err
	}
	rep.FleetCellsPerSec = float64(cells) / time.Since(start).Seconds()

	// Overhead: the same block workload on a bare core and on one with the
	// live recorder attached, bound to a fleet cell, with the aggregation
	// loop snapshotting concurrently — the full observability tax.
	buf := benchInput()
	tx := make([]complex128, len(buf))
	bare, err := benchCore()
	if err != nil {
		return err
	}
	bareMsps := measureThroughput(len(buf), window, func() { bare.ProcessBlock(buf, tx) })

	inst, err := benchCore()
	if err != nil {
		return err
	}
	live := telemetry.NewLive(telemetry.DefaultJournalDepth)
	inst.SetRecorder(live)
	agg := fleet.New(fleet.Options{})
	agg.Cell("bench").BindLive(live)
	agg.Start(50 * time.Millisecond)
	instMsps := measureThroughput(len(buf), window, func() { inst.ProcessBlock(buf, tx) })
	agg.Stop()
	if bareMsps > 0 {
		pct := (1 - instMsps/bareMsps) * 100
		if pct < 0 {
			pct = 0
		}
		rep.TelemetryOverheadPct = pct
	}
	return nil
}

func experimentSection(rep *BenchReport, frames, packets int) error {
	timed := func(name string, f func() error) error {
		start := time.Now()
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		rep.Experiments = append(rep.Experiments, ExperimentTiming{
			Name:        name,
			WallClockMS: float64(time.Since(start).Microseconds()) / 1000,
		})
		return nil
	}

	if err := timed("fig6-single-loose", func() error {
		res, err := experiments.CharacterizeDetection(
			experiments.Fig6Config(experiments.SingleLongPreamble, false, frames))
		if err != nil {
			return err
		}
		for _, p := range res.Points {
			switch p.SNRdB {
			case -4, 2, 10:
				rep.Figures[fmt.Sprintf("fig6_pd_%+gdB", p.SNRdB)] = p.Pd
			}
		}
		rep.Figures["fig6_fa_per_sec"] = res.FalseAlarmsPerSec
		return nil
	}); err != nil {
		return err
	}

	if err := timed("fig7-short-preamble", func() error {
		res, err := experiments.CharacterizeDetection(experiments.Fig7Config(frames))
		if err != nil {
			return err
		}
		for _, p := range res.Points {
			switch p.SNRdB {
			case -4, 2, 10:
				rep.Figures[fmt.Sprintf("fig7_pd_%+gdB", p.SNRdB)] = p.Pd
			}
		}
		return nil
	}); err != nil {
		return err
	}

	if err := timed("fig8-energy", func() error {
		res, err := experiments.CharacterizeDetection(experiments.Fig8Config(frames))
		if err != nil {
			return err
		}
		for _, p := range res.Points {
			if p.SNRdB == 14 {
				rep.Figures["fig8_pd_+14dB"] = p.Pd
			}
		}
		return nil
	}); err != nil {
		return err
	}

	if err := timed("fig10-reactive-sweep", func() error {
		cfg := experiments.DefaultJamSweep(iperf.JamReactive, 100*time.Microsecond)
		cfg.Packets = packets
		pts, err := experiments.RunJamSweep(cfg)
		if err != nil {
			return err
		}
		rep.Figures["fig10_prr_strongest"] = pts[0].Result.PRR
		rep.Figures["fig10_prr_weakest"] = pts[len(pts)-1].Result.PRR
		return nil
	}); err != nil {
		return err
	}

	return timed("selectivity", func() error {
		res, err := experiments.Selectivity(frames/4, 15, 9)
		if err != nil {
			return err
		}
		minDiag, maxCross := 1.0, 0.0
		for i := range experiments.AllStandards {
			if res.Pd[i][i] < minDiag {
				minDiag = res.Pd[i][i]
			}
			for j := range experiments.AllStandards {
				if i != j && res.Pd[i][j] > maxCross {
					maxCross = res.Pd[i][j]
				}
			}
		}
		rep.Figures["selectivity_min_diagonal_pd"] = minDiag
		rep.Figures["selectivity_max_cross_pd"] = maxCross
		return nil
	})
}

// writeBenchJSON produces the benchmark baseline at path. An existing
// baseline is preserved unless force is set.
func writeBenchJSON(path string, force bool, frames, packets int) error {
	if !force {
		if _, err := os.Stat(path); err == nil {
			return fmt.Errorf("%s exists; pass -force (make bench-json FORCE=1) to overwrite", path)
		}
	}
	rep := &BenchReport{
		Date:        time.Now().Format("2006-01-02"),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Parallelism: experiments.Parallelism(),
		Frames:      frames,
		Packets:     packets,
		Figures:     map[string]float64{},
	}
	fmt.Printf("measuring datapath throughput...\n")
	if err := throughputSection(rep, 300*time.Millisecond); err != nil {
		return err
	}
	fmt.Printf("  core per-sample %6.2f Msamples/s\n", rep.ThroughputMsps.CorePerSample)
	fmt.Printf("  core block      %6.2f Msamples/s (%.2fx over per-sample)\n",
		rep.ThroughputMsps.CoreBlock, rep.ThroughputMsps.BlockOverScalar)
	fmt.Printf("  core block x%-2d  %6.2f Msamples/s aggregate\n",
		rep.ThroughputMsps.BlockWorkers, rep.ThroughputMsps.CoreBlockParallel)
	fmt.Printf("  xcorr packed    %6.2f Msamples/s (%.1fx over scalar reference)\n",
		rep.ThroughputMsps.XCorrPacked, rep.ThroughputMsps.PackedOverRef)
	fmt.Printf("  wifi tx frame   %6.2f Msamples/s\n", rep.ThroughputMsps.WiFiTx)
	fmt.Printf("  wifi rx frame   %6.2f Msamples/s\n", rep.ThroughputMsps.WiFiRx)
	fmt.Printf("  flow sync       %6.2f Msamples/s\n", rep.ThroughputMsps.FlowSync)
	fmt.Printf("  flow pipeline   %6.2f Msamples/s (%.2fx over sync)\n",
		rep.ThroughputMsps.FlowPipeline, rep.ThroughputMsps.PipelineOverSync)
	fmt.Printf("measuring fleet telemetry plane...\n")
	if err := fleetSection(rep, 300*time.Millisecond); err != nil {
		return err
	}
	fmt.Printf("  fleet drill     %6.0f cells/s\n", rep.FleetCellsPerSec)
	fmt.Printf("  telemetry tax   %6.2f %% of block throughput\n", rep.TelemetryOverheadPct)
	fmt.Printf("running experiments (%d frames, %d packets, parallelism %d)...\n",
		frames, packets, rep.Parallelism)
	if err := experimentSection(rep, frames, packets); err != nil {
		return err
	}
	for _, e := range rep.Experiments {
		fmt.Printf("  %-22s %8.0f ms\n", e.Name, e.WallClockMS)
	}
	sum := profile.Capture()
	rep.Profile = &sum
	fmt.Printf("  heap %.1f MiB live, %.1f MiB cumulative, %d GCs\n",
		float64(sum.HeapAllocBytes)/(1<<20), float64(sum.TotalAllocBytes)/(1<<20), sum.NumGC)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
