package main

import (
	"fmt"
	"os"

	"repro/internal/chaos"
)

// runChaos executes the standard fault-campaign sweep — control plus every
// fault class at severities 1..3 — prints the invariant summary table, and
// writes the machine-readable JSONL report. The report is a pure function of
// the seed: running the same seed twice produces byte-identical files, so a
// diff of two reports is a regression signal.
func runChaos(seed int64, frames int, out string) error {
	fmt.Println("fault-injection campaign sweep: seeded chaos plans vs the")
	fmt.Println("datapath invariant catalog (parity, kernel bit-exactness,")
	fmt.Println("Tinit bound, engagement ledger, counter/ledger reconcile,")
	fmt.Println("register readback)")
	results, err := chaos.RunSweep(chaos.SweepConfig{Seed: seed, Frames: frames})
	if err != nil {
		return err
	}

	fmt.Printf("  %-9s %-4s %7s %6s %10s %7s\n",
		"class", "sev", "faults", "held", "degraded", "broken")
	var broken int
	for _, r := range results {
		fmt.Printf("  %-9s %-4d %7d %6d %10d %7d\n",
			r.Class, r.Severity, r.FaultTotal, r.Held, r.Degraded, r.Broken)
		broken += r.Broken
	}

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := chaos.WriteReport(f, results); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("  report: %s (%d campaigns, seed %d)\n", out, len(results), seed)
	}

	// The control campaign is the hard gate: zero faults, zero tolerance.
	ctl := results[0]
	if ctl.Broken > 0 || ctl.Degraded > 0 {
		return fmt.Errorf("control campaign not clean: %d broken, %d degraded", ctl.Broken, ctl.Degraded)
	}
	if broken > 0 {
		return fmt.Errorf("%d invariant(s) broken across the sweep — datapath bug, not a fault symptom", broken)
	}
	return nil
}
