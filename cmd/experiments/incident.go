package main

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/host"
	"repro/internal/jammer"
	"repro/internal/radio"
	"repro/internal/telemetry"
	"repro/internal/telemetry/flight"
	"repro/internal/telemetry/slo"
	"repro/internal/trigger"
)

// The incident drill (E16): a fully seeded energy-triggered run with the
// flight recorder armed, evaluated against a deliberately unattainable
// reaction budget so the SLO breach fires a dump. The run is executed twice
// and the dumps must be byte-identical — the drill doubles as an end-to-end
// determinism check on the whole breach→dump path.

const (
	incidentFloor  = 1e-6 // -60 dBFS noise floor, as in the detection experiments
	incidentFrames = 24
	incidentSeed   = 7
)

// incidentRun executes one seeded run and returns the breach dump.
func incidentRun(quiet bool) (*flight.Dump, error) {
	r := radio.New()
	live := telemetry.NewLive(telemetry.DefaultJournalDepth)
	r.Core().SetRecorder(live)
	h := host.New(r.Core())
	if _, err := h.ProgramEnergy(10, 0); err != nil {
		return nil, err
	}
	if _, err := h.ProgramTrigger(core.FusionSequence,
		[]trigger.Event{trigger.EventEnergyHigh}, 0); err != nil {
		return nil, err
	}
	if _, err := h.ProgramJammer(host.Personality{
		Name: "incident-probe", Waveform: jammer.WaveformWGN,
		Uptime: 10 * time.Microsecond, Gain: 1,
	}); err != nil {
		return nil, err
	}
	fr := flight.New(live, flight.Options{Seed: incidentSeed})
	fr.Arm()
	r.Start()

	// Stimulus: tiled WiFi short preamble at 12 dB over the floor, quiet lead
	// re-arming the detector and a tail long enough for each burst to finish.
	tpl := host.WiFiShortTemplate()
	frame := make(dsp.Samples, 0, 4*len(tpl))
	for i := 0; i < 4; i++ {
		frame = append(frame, tpl...)
	}
	amp := math.Sqrt(incidentFloor * dsp.FromDB(12))
	scale := complex(amp/math.Sqrt(frame.Power()), 0)
	noise := dsp.NewNoiseSource(incidentFloor, incidentSeed+77)
	const lead, tail = 512, 1536
	for f := 0; f < incidentFrames; f++ {
		buf := make(dsp.Samples, lead+len(frame)+tail)
		copy(buf[lead:], frame)
		for i := range buf {
			buf[i] = buf[i]*scale + noise.Sample()
		}
		r.MarkFrame(lead)
		fr.RecordIQ(buf)
		if _, err := r.Process(buf); err != nil {
			return nil, err
		}
	}

	snap := live.Snapshot()
	hr := snap.Histogram(telemetry.HistReaction)
	if hr.Count == 0 {
		return nil, fmt.Errorf("incident: no reactions recorded — stimulus never triggered")
	}
	metrics := map[string]float64{
		slo.MetricReactionP99:    float64(hr.P99),
		slo.MetricJournalDropped: float64(snap.Dropped),
		"reaction_p50_cycles":    float64(hr.P50),
		"jam_triggers":           float64(snap.Counters.JamTriggers),
	}
	// The drill budget: 1 cycle of reaction latency, unattainable by design
	// (the front-end group delay alone exceeds it), so the breach is certain
	// and seeded — the incident to replay.
	budgets := []slo.Budget{{
		Metric:      slo.MetricReactionP99,
		Max:         1,
		Description: "incident drill: deliberately unattainable reaction bound",
	}}
	rep := slo.Evaluate(budgets, metrics)
	if !quiet {
		if err := slo.WriteReport(os.Stdout, rep, metrics); err != nil {
			return nil, err
		}
	}
	if rep.Pass {
		return nil, fmt.Errorf("incident: drill budget unexpectedly met (reaction p99 %v cycles)", hr.P99)
	}
	c := rep.Failed()[0]
	detail := fmt.Sprintf("%s = %g > budget %g (%s)",
		c.Budget.Metric, c.Value, c.Budget.Max, c.Budget.Description)
	return fr.Trigger(flight.TriggerSLOBreach, r.Core().Clock().Cycle(), detail), nil
}

// runIncident is `-run incident`: replay the seeded SLO breach twice, verify
// the two dumps are byte-identical, and write the dump to flightOut.
func runIncident(flightOut string) error {
	fmt.Println("incident drill: seeded SLO breach → flight-recorder dump (E16)")
	d1, err := incidentRun(false)
	if err != nil {
		return err
	}
	d2, err := incidentRun(true)
	if err != nil {
		return err
	}
	b1, err := d1.Marshal()
	if err != nil {
		return err
	}
	b2, err := d2.Marshal()
	if err != nil {
		return err
	}
	if !bytes.Equal(b1, b2) {
		return fmt.Errorf("incident: replay diverged — dumps differ (%d vs %d bytes)", len(b1), len(b2))
	}
	h, err := d1.Hash()
	if err != nil {
		return err
	}
	fmt.Printf("  trigger %v at cycle %d: %s\n", d1.Trigger, d1.Cycle, d1.Detail)
	fmt.Printf("  dump: %d events (%d truncated), %d reg writes, %d I/Q samples\n",
		len(d1.Events), d1.EventsTruncated, len(d1.RegWrites), len(d1.IQ))
	fmt.Printf("  replayed twice, byte-identical: fnv1a %s\n", h)
	if flightOut != "" {
		f, err := os.Create(flightOut)
		if err != nil {
			return err
		}
		if err := d1.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("  wrote %s (%d bytes)\n", flightOut, len(b1))
	}
	return nil
}
