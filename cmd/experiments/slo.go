package main

import (
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/telemetry"
	"repro/internal/telemetry/slo"
	"repro/internal/telemetry/span"
	"repro/internal/verdict"
)

// sloVerdictConfig is the seeded single-point run the SLO evaluation (and
// `-run verdict`) classifies: energy detection at a comfortably detectable
// SNR, the regime the paper's reaction guarantees describe.
func sloVerdictConfig(frames int) experiments.VerdictConfig {
	return experiments.VerdictConfig{
		Detection: experiments.DetectionConfig{
			EnergyThresholdDB: 10,
			Kind:              experiments.FullFrame,
			FramesPerPoint:    frames,
			SNRsDB:            []float64{11},
			Seed:              7,
		},
	}
}

// runSLO measures the reaction-latency distribution and the verdict ledger
// on seeded runs, then evaluates the paper-derived SLO budgets. A violated
// budget (or a ledger that fails to reconcile) is an error, which `make
// slo` and `make ci` turn into a failing exit code.
func runSLO(frames int) error {
	fmt.Println("SLO evaluation against the paper's timing budgets (seeded run)")
	res, err := experiments.MeasureReactionLatency(experiments.ReactionConfig{
		Frames: frames, Seed: 7,
	})
	if err != nil {
		return err
	}
	out, err := experiments.RunVerdictLedger(sloVerdictConfig(30))
	if err != nil {
		return err
	}
	if !out.Reconciled {
		return fmt.Errorf("verdict ledger does not reconcile with counter figures "+
			"(counter Pd %v FA %d, ledger Pd %v FA %d)",
			out.CounterPd, out.CounterFalseAlarms, out.LedgerPd, out.LedgerFalseAlarms)
	}

	hr := res.Snapshot.Histogram(telemetry.HistReaction)
	ht := res.Snapshot.Histogram(telemetry.HistTriggerToRF)
	metrics := map[string]float64{
		slo.MetricReactionP99:    float64(hr.P99),
		slo.MetricTriggerToRFP99: float64(ht.P99),
		slo.MetricLateFraction:   out.Ledger.Summary.LateFraction,
		slo.MetricFalseAlarmsSec: out.FalseAlarmsPerSec,
		slo.MetricJournalDropped: float64(res.Snapshot.Dropped),
		// Context rows (not budgeted).
		"reaction_p50_cycles": float64(hr.P50),
		"reaction_frames":     float64(res.Frames),
		"ledger_pd":           out.LedgerPd,
		"ledger_packets":      float64(out.Ledger.Summary.Packets),
	}
	allowance := experiments.WiFiFrontEndGroupDelayCycles()
	rep := slo.Evaluate(slo.DefaultBudgets(allowance), metrics)
	if err := slo.WriteReport(os.Stdout, rep, metrics); err != nil {
		return err
	}
	if !rep.Pass {
		return fmt.Errorf("%d SLO budget(s) violated", len(rep.Failed()))
	}
	fmt.Println("  all budgets met")
	return nil
}

// runVerdict prints the verdict-ledger summary and reconciliation, writing
// the per-packet JSONL ledger when -ledger is set.
func runVerdict(frames int, ledgerPath string) error {
	fmt.Println("per-packet verdict ledger (seeded single-point run)")
	out, err := experiments.RunVerdictLedger(sloVerdictConfig(frames))
	if err != nil {
		return err
	}
	s := out.Ledger.Summary
	fmt.Printf("  SNR %+.1f dB, %d packets: TP %d  FN %d  late %d  FP-engagements %d\n",
		out.SNRdB, s.Packets, s.TP, s.FN, s.Late, s.FPEngagements)
	fmt.Printf("  Pd          counter %.4f   ledger %.4f\n", out.CounterPd, out.LedgerPd)
	fmt.Printf("  det/frame   counter %.4f   ledger %.4f\n",
		out.CounterDetectionsPerFrame, out.LedgerDetectionsPerFrame)
	fmt.Printf("  false alarms counter %d     ledger %d  (%.3f/s over %.2f s)\n",
		out.CounterFalseAlarms, out.LedgerFalseAlarms, out.FalseAlarmsPerSec, out.FACalibrationSec)
	if !out.Reconciled {
		return fmt.Errorf("ledger does not reconcile with counter figures")
	}
	fmt.Println("  reconciled: counter and ledger figures agree bit-for-bit")
	if len(out.Engagements) > 0 {
		fmt.Println("  first engagement span tree:")
		if err := writeIndentedTree(os.Stdout, out); err != nil {
			return err
		}
	}
	if ledgerPath != "" {
		f, err := os.Create(ledgerPath)
		if err != nil {
			return err
		}
		if err := out.Ledger.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("  wrote %d ledger rows to %s\n", len(out.Ledger.Records)+1, ledgerPath)
	}
	return nil
}

func writeIndentedTree(w *os.File, out *experiments.VerdictOutcome) error {
	// Show the first true-positive engagement (falling back to the first).
	eng := &out.Engagements[0]
	for _, rec := range out.Ledger.Records {
		if rec.Class == verdict.TP && rec.Eng != 0 {
			for i := range out.Engagements {
				if out.Engagements[i].ID == rec.Eng {
					eng = &out.Engagements[i]
				}
			}
			break
		}
	}
	return span.WriteTree(w, eng)
}
